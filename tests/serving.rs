//! Serving-engine integration: the online engine must be a deterministic,
//! bit-exact, hot-swappable view of offline evaluation.

use lumos5g::{FeatureSet, Lumos5G, ModelKind, TrainedRegressor};
use lumos5g_serve::{Engine, EngineConfig, OverloadPolicy, Prediction, ReplaySource};
use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig, Dataset};
use std::collections::{BTreeMap, HashMap};

fn serving_data(seed: u64) -> Dataset {
    let area = airport(seed);
    let cfg = CampaignConfig {
        passes_per_trajectory: 3,
        max_duration_s: 200,
        base_seed: seed,
        bad_gps_fraction: 0.0,
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);
    quality::apply(&raw, &area.frame, &Default::default()).0
}

fn gdbt_lmc(data: &Dataset, seed: u64) -> TrainedRegressor {
    let mut cfg = lumos5g::quick_gbdt();
    cfg.seed = seed;
    Lumos5G::new(FeatureSet::LMC, ModelKind::Gdbt(cfg))
        .fit_regression(data)
        .unwrap()
}

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        shards: 4,
        queue_capacity: 256,
        policy: OverloadPolicy::Block,
        ..Default::default()
    }
}

fn run_replay(model: TrainedRegressor, src: &ReplaySource) -> Vec<Prediction> {
    let engine = Engine::start(model, engine_cfg());
    let stats = src.run(&engine, 0.0);
    assert_eq!(stats.shed, 0);
    let (report, responses) = engine.shutdown();
    assert_eq!(report.processed, stats.submitted);
    responses.iter().collect()
}

/// One sequence response: `(ue, pass, t)` → horizon bits (`None` = warm-up).
type HorizonKey = ((u64, u32, u32), Option<Vec<u64>>);

fn seq2seq_lm(data: &Dataset, seed: u64) -> TrainedRegressor {
    let mut p = lumos5g::quick_seq2seq();
    p.seed = seed;
    p.epochs = 3;
    Lumos5G::new(FeatureSet::LM, ModelKind::Seq2Seq(p))
        .fit_regression(data)
        .unwrap()
}

#[test]
fn sequence_serving_bit_matches_offline_and_any_shard_or_batch_count() {
    let data = serving_data(83);
    let model = seq2seq_lm(&data, 0);
    let params = *model.seq2seq_params().unwrap();
    let spec = *model.spec().unwrap();
    let required = spec.required_window();
    let src = ReplaySource::from_dataset(&data, 6);

    // Offline reference: replay each UE's stream through the same sliding
    // windows a Session maintains — record window for extraction, feature
    // history for the encoder, both reset at any discontinuity — and call
    // the offline predictor directly once the history fills.
    let mut windows: HashMap<u64, Vec<lumos5g_sim::Record>> = HashMap::new();
    let mut hists: HashMap<u64, Vec<Vec<f64>>> = HashMap::new();
    let mut expected: HashMap<(u64, u32, u32), Option<Vec<u64>>> = HashMap::new();
    for (ue, r) in src.events() {
        let w = windows.entry(*ue).or_default();
        let h = hists.entry(*ue).or_default();
        let contiguous = w
            .last()
            .is_none_or(|p| p.pass_id == r.pass_id && p.t.checked_add(1) == Some(r.t));
        if !contiguous {
            w.clear();
            h.clear();
        }
        if w.len() == required {
            w.remove(0);
        }
        w.push(r.clone());
        if let Some(x) = spec.extract_latest(w) {
            if h.len() == params.input_len {
                h.remove(0);
            }
            h.push(x);
        }
        let horizon = if h.len() >= params.input_len {
            let y = model.predict_sequence_checked(h).unwrap();
            assert_eq!(y.len(), params.horizon);
            Some(y.iter().map(|v| v.to_bits()).collect::<Vec<u64>>())
        } else {
            None
        };
        expected.insert((*ue, r.pass_id, r.t), horizon);
    }
    assert!(
        expected.values().any(Option::is_some),
        "reference replay produced no full histories"
    );

    // Online: the same stream through every shard count and decode batch
    // must reproduce the offline horizons bit-for-bit — batching and
    // sharding reorder work, never floating-point operations.
    let mut baseline: Option<Vec<HorizonKey>> = None;
    for (shards, decode_batch) in [(1usize, 8usize), (2, 8), (4, 8), (4, 1)] {
        let engine = Engine::start(
            model.clone(),
            EngineConfig {
                shards,
                queue_capacity: 256,
                policy: OverloadPolicy::Block,
                decode_batch,
                ..Default::default()
            },
        );
        let stats = src.run(&engine, 0.0);
        assert_eq!(stats.shed, 0);
        let (report, responses) = engine.shutdown();
        let responses: Vec<Prediction> = responses.iter().collect();
        assert_eq!(report.processed, stats.submitted);
        assert_eq!(responses.len() as u64, stats.submitted);

        for p in &responses {
            assert!(!p.degraded, "fault-free sequence serving degraded");
            let got = p
                .horizon_mbps
                .as_ref()
                .map(|h| h.iter().map(|v| v.to_bits()).collect::<Vec<u64>>());
            let want = expected
                .get(&(p.ue, p.pass_id, p.t))
                .unwrap_or_else(|| panic!("unexpected response key ue={} t={}", p.ue, p.t));
            assert_eq!(
                &got, want,
                "horizon mismatch at ue={} pass={} t={} (shards={shards} batch={decode_batch})",
                p.ue, p.pass_id, p.t
            );
            // The scalar response is the first step of the horizon.
            assert_eq!(
                p.predicted_mbps.map(f64::to_bits),
                p.horizon_mbps
                    .as_ref()
                    .and_then(|h| h.first())
                    .map(|v| v.to_bits())
            );
        }

        let mut keyed: Vec<_> = responses
            .into_iter()
            .map(|p| {
                (
                    (p.ue, p.pass_id, p.t),
                    p.horizon_mbps
                        .map(|h| h.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()),
                )
            })
            .collect();
        keyed.sort_unstable();
        match &baseline {
            None => baseline = Some(keyed),
            Some(b) => assert_eq!(
                b, &keyed,
                "shards={shards} batch={decode_batch} diverged from baseline"
            ),
        }
    }
}

#[test]
fn serving_is_deterministic_under_fixed_seed() {
    let data = serving_data(31);
    let src = ReplaySource::from_dataset(&data, 6);
    let mut a = run_replay(gdbt_lmc(&data, 0), &src);
    let mut b = run_replay(gdbt_lmc(&data, 0), &src);
    let key = |p: &Prediction| (p.ue, p.pass_id, p.t);
    a.sort_by_key(key);
    b.sort_by_key(key);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(key(x), key(y));
        assert_eq!(x.shard, y.shard, "UE affinity must be stable");
        // Bit-exact predictions across runs.
        assert_eq!(
            x.predicted_mbps.map(f64::to_bits),
            y.predicted_mbps.map(f64::to_bits),
            "prediction differs at ue={} pass={} t={}",
            x.ue,
            x.pass_id,
            x.t
        );
    }
}

#[test]
fn online_predictions_bit_match_offline_eval() {
    let data = serving_data(47);
    let model = gdbt_lmc(&data, 0);
    let spec = *model.spec().unwrap();

    // Offline reference: per-pass extraction + single-row prediction —
    // the exact reduction TrainedRegressor::eval performs internally.
    let mut offline: HashMap<(u32, u32), f64> = HashMap::new();
    let mut passes: BTreeMap<(u32, u32), Vec<&lumos5g_sim::Record>> = BTreeMap::new();
    for r in &data.records {
        passes.entry((r.trajectory, r.pass_id)).or_default().push(r);
    }
    for ((_, pass_id), mut recs) in passes {
        recs.sort_by_key(|r| r.t);
        let owned: Vec<lumos5g_sim::Record> = recs.into_iter().cloned().collect();
        for i in 0..owned.len() {
            if let Some(x) = spec.extract(&owned, i) {
                offline.insert((pass_id, owned[i].t), model.predict_one(&x).unwrap());
            }
        }
    }
    assert!(!offline.is_empty());

    // Online: replay the same records through a 4-shard engine.
    let src = ReplaySource::from_dataset(&data, 8);
    let responses = run_replay(model.clone(), &src);

    let mut matched = 0usize;
    for p in &responses {
        match (p.predicted_mbps, offline.get(&(p.pass_id, p.t))) {
            (Some(online), Some(&reference)) => {
                assert_eq!(
                    online.to_bits(),
                    reference.to_bits(),
                    "online {} != offline {} at pass={} t={}",
                    online,
                    reference,
                    p.pass_id,
                    p.t
                );
                matched += 1;
            }
            (None, None) => {} // warm-up second offline too (short history)
            (online, reference) => panic!(
                "warm-up disagreement at pass={} t={}: online={online:?} offline={reference:?}",
                p.pass_id, p.t
            ),
        }
    }
    assert_eq!(matched, offline.len(), "every offline row must be served");

    // Cross-check against the public eval() API: the multiset of
    // (truth, prediction) pairs must agree bit-for-bit on rows that have
    // a next-second ground truth.
    let (truth, pred) = model.eval(&data);
    let mut offline_pairs: Vec<(u64, u64)> = truth
        .iter()
        .zip(&pred)
        .map(|(t, p)| (t.to_bits(), p.to_bits()))
        .collect();
    // Online: prediction at t targets t+1; join with the measured value
    // echoed by the response at t+1 of the same pass.
    let mut measured: HashMap<(u32, u32), f64> = HashMap::new();
    for p in &responses {
        measured.insert((p.pass_id, p.t), p.measured_mbps);
    }
    let mut online_pairs: Vec<(u64, u64)> = responses
        .iter()
        .filter_map(|p| {
            let y = p.predicted_mbps?;
            let truth = measured.get(&(p.pass_id, p.t + 1))?;
            Some((truth.to_bits(), y.to_bits()))
        })
        .collect();
    offline_pairs.sort_unstable();
    online_pairs.sort_unstable();
    assert_eq!(offline_pairs, online_pairs);

    // Persistence leg: a codec round trip of the model must serve the
    // replay with the exact same bits as the in-memory original.
    let restored =
        lumos5g::persist::decode_regressor(&lumos5g::persist::encode_regressor(&model).unwrap())
            .unwrap();
    let restored_responses = run_replay(restored, &src);
    let key_pred = |ps: &[Prediction]| {
        let mut v: Vec<_> = ps
            .iter()
            .map(|p| (p.ue, p.pass_id, p.t, p.predicted_mbps.map(f64::to_bits)))
            .collect();
        v.sort_unstable();
        v
    };
    assert_eq!(key_pred(&responses), key_pred(&restored_responses));
}

#[test]
fn hot_swap_drops_nothing_and_keeps_order() {
    let data = serving_data(59);
    let model_a = gdbt_lmc(&data, 0);
    let mut cfg_b = lumos5g::quick_gbdt();
    cfg_b.seed = 99;
    cfg_b.n_estimators = 30;
    let model_b = Lumos5G::new(FeatureSet::LMC, ModelKind::Gdbt(cfg_b))
        .fit_regression(&data)
        .unwrap();

    let src = ReplaySource::from_dataset(&data, 6);
    let events = src.events();
    let half = events.len() / 2;

    let engine = Engine::start(model_a, engine_cfg());
    // Drain responses concurrently so unbounded buffering never hides a
    // drop; the consumer also sees responses in per-shard emit order.
    let rx = engine.responses().clone();
    let consumer = std::thread::spawn(move || rx.iter().collect::<Vec<Prediction>>());

    for (ue, r) in &events[..half] {
        assert!(engine.submit(*ue, r.clone()));
    }
    let v2 = engine.registry().swap(model_b);
    assert_eq!(v2, 2);
    for (ue, r) in &events[half..] {
        assert!(engine.submit(*ue, r.clone()));
    }
    let (report, _rx) = engine.shutdown();
    let responses = consumer.join().unwrap();

    // Zero dropped: one response per submitted record.
    assert_eq!(report.shed, 0);
    assert_eq!(responses.len(), events.len());
    assert_eq!(report.processed as usize, events.len());

    // Zero out-of-order: per UE, responses appear in exactly the order the
    // records were submitted.
    let mut submitted_by_ue: HashMap<u64, Vec<(u32, u32)>> = HashMap::new();
    for (ue, r) in events {
        submitted_by_ue
            .entry(*ue)
            .or_default()
            .push((r.pass_id, r.t));
    }
    let mut responded_by_ue: HashMap<u64, Vec<(u32, u32)>> = HashMap::new();
    for p in &responses {
        responded_by_ue
            .entry(p.ue)
            .or_default()
            .push((p.pass_id, p.t));
    }
    assert_eq!(submitted_by_ue, responded_by_ue);

    // Model versions only ever move forward for a given UE.
    let mut seen: HashMap<u64, u64> = HashMap::new();
    for p in &responses {
        let last = seen.entry(p.ue).or_insert(p.model_version);
        assert!(
            p.model_version >= *last,
            "ue {} regressed from v{} to v{}",
            p.ue,
            last,
            p.model_version
        );
        *last = p.model_version;
        assert!(p.model_version == 1 || p.model_version == 2);
    }
    // The swap happened mid-run: the new version must actually serve.
    assert!(responses.iter().any(|p| p.model_version == 2));
}
