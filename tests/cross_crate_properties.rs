//! Property-based tests for cross-crate invariants (proptest).

use lumos5g::classes::ThroughputClass;
use lumos5g_geo::{
    fold_angle_deg, mobility_angle_deg, normalize_deg, positional_angle_deg, GridIndex, LatLon,
    LocalFrame, PanelPose, Point2,
};
use lumos5g_ml::dataset::TargetScaler;
use lumos5g_ml::StandardScaler;
use lumos5g_radio::{capacity_mbps, CapacityConfig};
use proptest::prelude::*;

proptest! {
    #[test]
    fn angle_normalization_is_idempotent(a in -1e4f64..1e4) {
        let n = normalize_deg(a);
        prop_assert!((0.0..360.0).contains(&n));
        prop_assert!((normalize_deg(n) - n).abs() < 1e-9);
    }

    #[test]
    fn folded_angles_stay_in_half_circle(a in -1e4f64..1e4) {
        let f = fold_angle_deg(a);
        prop_assert!((0.0..=180.0).contains(&f));
    }

    #[test]
    fn pixel_roundtrip_error_bounded(
        lat in 44.0f64..46.0,
        lon in -94.0f64..-92.0,
    ) {
        let p = LatLon::new(lat, lon);
        let px = p.to_pixel(17);
        let back = px.center_latlon();
        let frame = LocalFrame::new(p);
        let err = frame.to_local(back);
        let d = (err.x * err.x + err.y * err.y).sqrt();
        // Must stay within one pixel diagonal (≈1.2 m at these latitudes).
        prop_assert!(d < 1.3, "pixel roundtrip moved {d} m");
    }

    #[test]
    fn local_frame_roundtrip(
        lat in 44.0f64..46.0,
        lon in -94.0f64..-92.0,
        x in -2000.0f64..2000.0,
        y in -2000.0f64..2000.0,
    ) {
        let frame = LocalFrame::new(LatLon::new(lat, lon));
        let p = Point2::new(x, y);
        let rt = frame.to_local(frame.to_latlon(p));
        prop_assert!((rt.x - x).abs() < 1e-6);
        prop_assert!((rt.y - y).abs() < 1e-6);
    }

    #[test]
    fn grid_cell_contains_its_center(x in -1e5f64..1e5, y in -1e5f64..1e5, size in 0.5f64..50.0) {
        let g = GridIndex::new(size);
        let c = g.cell_of(Point2::new(x, y));
        prop_assert_eq!(g.cell_of(g.center_of(c)), c);
    }

    #[test]
    fn positional_angle_in_range(
        px in -500.0f64..500.0, py in -500.0f64..500.0,
        az in 0.0f64..360.0,
        ux in -500.0f64..500.0, uy in -500.0f64..500.0,
    ) {
        prop_assume!((px - ux).abs() > 1e-6 || (py - uy).abs() > 1e-6);
        let pose = PanelPose::new(Point2::new(px, py), az);
        let tp = positional_angle_deg(&pose, Point2::new(ux, uy));
        prop_assert!((0.0..360.0).contains(&tp));
    }

    #[test]
    fn mobility_angle_shifts_with_heading(
        az in 0.0f64..360.0,
        heading in 0.0f64..360.0,
    ) {
        let pose = PanelPose::new(Point2::new(0.0, 0.0), az);
        let tm = mobility_angle_deg(&pose, heading);
        // Definition: θm = heading − azimuth (mod 360).
        prop_assert!((tm - normalize_deg(heading - az)).abs() < 1e-9);
    }

    #[test]
    fn capacity_is_monotone_and_bounded(s1 in -20.0f64..60.0, s2 in -20.0f64..60.0) {
        let cfg = CapacityConfig::default();
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let c_lo = capacity_mbps(lo, &cfg);
        let c_hi = capacity_mbps(hi, &cfg);
        prop_assert!(c_lo <= c_hi + 1e-9);
        prop_assert!((0.0..=cfg.max_mbps).contains(&c_hi));
    }

    #[test]
    fn throughput_classes_partition_the_line(t in 0.0f64..3000.0) {
        let c = ThroughputClass::of(t);
        match c {
            ThroughputClass::Low => prop_assert!(t < 300.0),
            ThroughputClass::Medium => prop_assert!((300.0..700.0).contains(&t)),
            ThroughputClass::High => prop_assert!(t >= 700.0),
        }
    }

    #[test]
    fn scaler_roundtrip_is_identity(
        vals in prop::collection::vec(-1e4f64..1e4, 4..40),
    ) {
        let rows: Vec<Vec<f64>> = vals.iter().map(|&v| vec![v, v * 2.0 + 1.0]).collect();
        let s = StandardScaler::fit(&rows);
        for r in &rows {
            let rt = s.inverse_row(&s.transform_row(r));
            prop_assert!((rt[0] - r[0]).abs() < 1e-6);
            prop_assert!((rt[1] - r[1]).abs() < 1e-6);
        }
    }

    #[test]
    fn target_scaler_roundtrip(vals in prop::collection::vec(-1e5f64..1e5, 2..50), probe in -1e5f64..1e5) {
        let t = TargetScaler::fit(&vals);
        prop_assert!((t.inverse(t.transform(probe)) - probe).abs() < 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tcp_goodput_never_exceeds_capacity(
        caps in prop::collection::vec(0.0f64..2500.0, 5..25),
        seed in 0u64..1000,
    ) {
        let mut s = lumos5g_net::BulkSession::new(lumos5g_net::TcpConfig::iperf_default(), seed);
        for &c in &caps {
            let g = s.step_second(c);
            prop_assert!(g <= c + 1e-9, "goodput {g} > capacity {c}");
            prop_assert!(g >= 0.0);
        }
    }

    #[test]
    fn shadow_field_is_pure(seed in 0u64..500, x in -1e3f64..1e3, y in -1e3f64..1e3) {
        let f = lumos5g_radio::ShadowField::mmwave_default(seed);
        let p = Point2::new(x, y);
        prop_assert_eq!(f.sample_db(p), f.sample_db(p));
    }
}
