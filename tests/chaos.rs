//! Chaos integration: under deterministic fault injection — corrupt
//! telemetry, model panics, NaN outputs, poison records and worker kills —
//! the engine must answer exactly one response per accepted record, keep
//! every emitted prediction finite, and reproduce identical fault counters
//! and response bits across two runs with the same seed. An inert
//! `FaultPlan` must be indistinguishable from running with no plan at all,
//! which is what keeps the fault-free bit-exactness invariant intact.

use lumos5g::{FeatureSet, Lumos5G, ModelKind, TrainedRegressor};
use lumos5g_serve::{
    Engine, EngineConfig, EngineReport, FaultPlan, ModelRegistry, OverloadPolicy, Prediction,
    ReplaySource,
};
use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig, Dataset};
use std::sync::Arc;

fn chaos_data(seed: u64) -> Dataset {
    let area = airport(seed);
    let cfg = CampaignConfig {
        passes_per_trajectory: 3,
        max_duration_s: 200,
        base_seed: seed,
        bad_gps_fraction: 0.0,
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);
    quality::apply(&raw, &area.frame, &Default::default()).0
}

fn gdbt_lmc(data: &Dataset) -> TrainedRegressor {
    let mut cfg = lumos5g::quick_gbdt();
    cfg.seed = 7;
    Lumos5G::new(FeatureSet::LMC, ModelKind::Gdbt(cfg))
        .fit_regression(data)
        .unwrap()
}

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        shards: 4,
        queue_capacity: 512,
        policy: OverloadPolicy::Block,
        ..Default::default()
    }
}

/// Response identity + payload, bit-exact: `(ue, pass, t, bits, degraded)`.
type ResponseKey = (u64, u32, u32, Option<u64>, bool);

/// One full replay (`rounds` passes over `src`) through a chaos-enabled
/// engine. Returns the shutdown report, accepted/rejected tallies and the
/// sorted multiset of responses. Asserts the invariants that must hold on
/// *every* run regardless of seed: nothing shed under `Block`, and no
/// non-finite prediction ever emitted.
fn run_chaos(
    model: TrainedRegressor,
    src: &ReplaySource,
    plan: Option<Arc<FaultPlan>>,
    rounds: usize,
) -> (EngineReport, u64, u64, Vec<ResponseKey>) {
    let engine = Engine::start_with_faults(Arc::new(ModelRegistry::new(model)), engine_cfg(), plan);
    // Drain concurrently so the unbounded output buffer never hides a loss.
    let rx = engine.responses().clone();
    let consumer = std::thread::spawn(move || rx.iter().collect::<Vec<Prediction>>());
    let (mut accepted, mut rejected) = (0u64, 0u64);
    for _ in 0..rounds {
        let stats = src.run(&engine, 0.0);
        assert_eq!(stats.shed, 0, "Block policy must never shed");
        accepted += stats.accepted;
        rejected += stats.rejected;
    }
    let (report, _rx) = engine.shutdown();
    let responses = consumer.join().unwrap();
    for p in &responses {
        if let Some(y) = p.predicted_mbps {
            assert!(
                y.is_finite(),
                "non-finite prediction {y} at ue={} pass={} t={} (degraded={})",
                p.ue,
                p.pass_id,
                p.t,
                p.degraded
            );
        }
        if let Some(h) = &p.horizon_mbps {
            assert!(
                h.iter().all(|v| v.is_finite()),
                "non-finite horizon {h:?} at ue={} pass={} t={}",
                p.ue,
                p.pass_id,
                p.t
            );
            assert_eq!(
                p.predicted_mbps.map(f64::to_bits),
                h.first().map(|v| v.to_bits()),
                "horizon[0] must be the served prediction"
            );
        }
    }
    let mut keys: Vec<ResponseKey> = responses
        .iter()
        .map(|p| {
            (
                p.ue,
                p.pass_id,
                p.t,
                p.predicted_mbps.map(f64::to_bits),
                p.degraded,
            )
        })
        .collect();
    keys.sort_unstable();
    (report, accepted, rejected, keys)
}

#[test]
fn chaos_replay_answers_every_accepted_record_deterministically() {
    let data = chaos_data(23);
    let model = gdbt_lmc(&data);
    // In-shard faults are keyed by record *content*, so a replay that loops
    // the same ~1k-event stream only ever draws from ~1k distinct keys —
    // production-scale basis-point rates would round to zero here. Crank
    // the rates so every fault class provably fires each round.
    let mut plan = FaultPlan::seeded(0xC4A05);
    plan.predict_panic_bp = 100;
    plan.predict_nan_bp = 100;
    plan.predict_slow_bp = 50;
    plan.poison_bp = 50;
    plan.kill_bp = 40;
    plan.corrupt_bp = 100;
    let plan = Arc::new(plan);
    let src = ReplaySource::from_dataset(&data, 8).corrupted(&plan);
    let rounds = 50_000_usize.div_ceil(src.len()).max(1);
    assert!(
        src.len() * rounds >= 50_000,
        "chaos replay must cover >= 50k records, got {}",
        src.len() * rounds
    );

    let (ra, acc_a, rej_a, keys_a) = run_chaos(model.clone(), &src, Some(plan.clone()), rounds);
    let (rb, acc_b, rej_b, keys_b) = run_chaos(model, &src, Some(plan), rounds);

    // (a) Exactly one response per accepted record — none lost, none extra.
    assert_eq!(keys_a.len() as u64, acc_a, "responses != accepted records");
    assert_eq!(ra.processed, acc_a);
    assert_eq!(ra.rejected, rej_a);
    assert_eq!(ra.shed, 0);
    assert_eq!(ra.shed_stale, 0);

    // Every injected fault class actually fired at these rates.
    assert!(rej_a > 0, "source corruption never tripped admission");
    assert!(ra.quarantined > 0, "no poison record was quarantined");
    assert!(
        ra.fallbacks > 0,
        "no model fault reached the fallback chain"
    );
    assert!(ra.panicked > 0, "no worker was ever killed");
    assert_eq!(ra.restarted, ra.panicked, "every dead worker is respawned");

    // Counter accounting: each processed record is exactly one of
    // predicted / warm-up / quarantined.
    let warmups: u64 = ra.shards.iter().map(|s| s.warmups).sum();
    assert_eq!(ra.predictions + warmups + ra.quarantined, ra.processed);

    // Online MAE survives degraded answers without going non-finite.
    assert!(ra.mae_mbps.is_some_and(f64::is_finite));

    // (b) Same seed, same counters.
    assert_eq!(acc_a, acc_b);
    assert_eq!(rej_a, rej_b);
    assert_eq!(ra.processed, rb.processed);
    assert_eq!(ra.predictions, rb.predictions);
    assert_eq!(ra.quarantined, rb.quarantined);
    assert_eq!(ra.fallbacks, rb.fallbacks);
    assert_eq!(ra.panicked, rb.panicked);
    assert_eq!(ra.restarted, rb.restarted);
    assert_eq!(ra.rejected_by, rb.rejected_by);
    assert_eq!(ra.mae_mbps.map(f64::to_bits), rb.mae_mbps.map(f64::to_bits));

    // (c) Same seed, bit-identical responses (finiteness asserted above).
    assert_eq!(
        keys_a, keys_b,
        "same-seed chaos runs must match bit-for-bit"
    );
}

/// Sequence serving under chaos: the batched decoder path must uphold the
/// same liveness contract as the single-row path — exactly one finite
/// response per accepted record, every fault class survived. Response bits
/// are NOT compared across runs here: batch composition depends on queue
/// timing, so a worker kill can land after a different number of emitted
/// lanes run-to-run; the fault-free bit-exactness invariant is covered by
/// the `serving` test instead.
#[test]
fn seq2seq_chaos_replay_answers_every_accepted_record() {
    let data = chaos_data(29);
    let mut p = lumos5g::quick_seq2seq();
    p.epochs = 2;
    let model = Lumos5G::new(FeatureSet::LM, ModelKind::Seq2Seq(p))
        .fit_regression(&data)
        .unwrap();
    let mut plan = FaultPlan::seeded(0x5E42);
    plan.predict_panic_bp = 200;
    plan.predict_nan_bp = 200;
    plan.predict_slow_bp = 100;
    plan.poison_bp = 100;
    plan.kill_bp = 80;
    plan.corrupt_bp = 200;
    let plan = Arc::new(plan);
    let src = ReplaySource::from_dataset(&data, 8).corrupted(&plan);

    let (ra, accepted, rejected, keys) = run_chaos(model, &src, Some(plan), 3);

    // Exactly one (finite — asserted inside run_chaos) response per
    // accepted record, none lost to a quarantine, kill or batch boundary.
    assert_eq!(keys.len() as u64, accepted, "responses != accepted records");
    assert_eq!(ra.processed, accepted);
    assert_eq!(ra.rejected, rejected);
    assert_eq!(ra.shed, 0);
    assert_eq!(ra.shed_stale, 0);

    // Every fault class fired and was survived.
    assert!(rejected > 0, "source corruption never tripped admission");
    assert!(ra.quarantined > 0, "no poison record was quarantined");
    assert!(
        ra.fallbacks > 0,
        "no model fault reached the fallback chain"
    );
    assert!(ra.panicked > 0, "no worker was ever killed");
    assert_eq!(ra.restarted, ra.panicked, "every dead worker is respawned");
    assert!(keys.iter().any(|k| k.4), "no degraded response was served");

    // Counter accounting holds on the batched path too: each processed
    // record is exactly one of predicted / warm-up / quarantined.
    let warmups: u64 = ra.shards.iter().map(|s| s.warmups).sum();
    assert_eq!(ra.predictions + warmups + ra.quarantined, ra.processed);
    assert!(ra.mae_mbps.is_some_and(f64::is_finite));
}

#[test]
fn inert_fault_plan_serves_bit_identical_to_fault_free() {
    let data = chaos_data(31);
    let model = gdbt_lmc(&data);
    let src = ReplaySource::from_dataset(&data, 6);

    let (clean, acc_clean, rej_clean, keys_clean) = run_chaos(model.clone(), &src, None, 1);
    let inert = Arc::new(FaultPlan::new(99));
    // An all-zero-rate plan's source corruption is the identity too.
    let src_inert = src.corrupted(&inert);
    let (idle, acc_inert, rej_inert, keys_inert) = run_chaos(model, &src_inert, Some(inert), 1);

    assert_eq!(rej_clean, 0);
    assert_eq!(rej_inert, 0);
    assert_eq!(acc_clean, acc_inert);
    assert_eq!(
        keys_clean, keys_inert,
        "an inert plan must not perturb serving bits"
    );
    assert!(
        keys_clean.iter().all(|k| !k.4),
        "fault-free serving must never be degraded"
    );
    for report in [&clean, &idle] {
        assert_eq!(report.quarantined, 0);
        assert_eq!(report.fallbacks, 0);
        assert_eq!(report.panicked, 0);
        assert_eq!(report.restarted, 0);
        assert_eq!(report.rejected, 0);
    }
}

#[test]
fn corrupted_records_are_rejected_by_admission() {
    let data = chaos_data(5);
    let plan = FaultPlan::seeded(42);
    let src = ReplaySource::from_dataset(&data, 4);
    let corrupted = src.corrupted(&plan);
    let mut hit = 0u64;
    for (i, ((_, original), (_, mangled))) in
        src.events().iter().zip(corrupted.events()).enumerate()
    {
        match plan.corruption_at(i as u64) {
            Some(kind) => {
                hit += 1;
                assert!(
                    lumos5g_serve::admit(mangled).is_err(),
                    "corruption {kind:?} at event {i} must be inadmissible"
                );
            }
            None => assert_eq!(original, mangled, "uncorrupted event {i} must be untouched"),
        }
    }
    assert!(hit > 0, "the seeded plan corrupted nothing");
}
