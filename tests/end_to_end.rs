//! End-to-end integration: campaign → quality pipeline → features → models
//! → metrics, asserting the paper's headline *orderings* hold on simulated
//! data (absolute numbers are sim-specific; orderings are the claims).

use lumos5g::prelude::*;
use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig, Dataset};

fn airport_data(seed: u64) -> Dataset {
    let area = airport(seed);
    let cfg = CampaignConfig {
        passes_per_trajectory: 6,
        max_duration_s: 350,
        base_seed: seed,
        bad_gps_fraction: 0.0,
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);
    quality::apply(&raw, &area.frame, &Default::default()).0
}

#[test]
fn location_alone_is_insufficient() {
    // §4.1: geolocation-only models yield poor accuracy; adding mobility
    // factors materially improves prediction (Table 4).
    let data = airport_data(101);
    let knn = ModelKind::Knn { k: 5 };
    let l = regression_eval(&data, FeatureSet::L, &knn, 1).unwrap();
    let ltm = regression_eval(&data, FeatureSet::LTM, &knn, 1).unwrap();
    assert!(
        ltm.mae < 0.7 * l.mae,
        "mobility factors should cut KNN MAE ≥30%: L {:.0} vs L+T+M {:.0}",
        l.mae,
        ltm.mae
    );
}

#[test]
fn gdbt_beats_all_baselines_on_rich_features() {
    // Table 9: GDBT with L+M+C beats KNN/RF with the same features.
    let data = airport_data(102);
    let gbdt = regression_eval(&data, FeatureSet::LMC, &ModelKind::Gdbt(quick_gbdt()), 1).unwrap();
    let knn = regression_eval(&data, FeatureSet::LMC, &ModelKind::Knn { k: 5 }, 1).unwrap();
    assert!(
        gbdt.mae < knn.mae,
        "GDBT {:.0} should beat KNN {:.0}",
        gbdt.mae,
        knn.mae
    );
}

#[test]
fn kriging_is_the_weakest_location_model() {
    // §7: geospatial interpolation cannot cope with mmWave discontinuities;
    // Table 9 shows OK worst on L.
    let data = airport_data(103);
    let ok = regression_eval(
        &data,
        FeatureSet::L,
        &ModelKind::Kriging { neighbors: 16 },
        1,
    )
    .unwrap();
    let gbdt = regression_eval(&data, FeatureSet::L, &ModelKind::Gdbt(quick_gbdt()), 1).unwrap();
    assert!(
        ok.rmse >= gbdt.rmse * 0.95,
        "OK RMSE {:.0} should not beat GDBT RMSE {:.0}",
        ok.rmse,
        gbdt.rmse
    );
}

#[test]
fn feature_sets_order_as_in_table8() {
    // Table 8 (per area): L is worst; adding M improves; adding C improves
    // again. Allow small slack for split noise.
    let data = airport_data(104);
    let m = ModelKind::Gdbt(quick_gbdt());
    let l = regression_eval(&data, FeatureSet::L, &m, 1).unwrap().mae;
    let lm = regression_eval(&data, FeatureSet::LM, &m, 1).unwrap().mae;
    let lmc = regression_eval(&data, FeatureSet::LMC, &m, 1).unwrap().mae;
    assert!(lm < l, "L+M ({lm:.0}) must beat L ({l:.0})");
    assert!(
        lmc < lm * 1.1,
        "L+M+C ({lmc:.0}) should not regress vs L+M ({lm:.0})"
    );
}

#[test]
fn tower_features_match_location_features() {
    // §6.2: T+M prediction quality matches L+M (the location-agnostic
    // features carry the same signal inside one area).
    let data = airport_data(105);
    let m = ModelKind::Gdbt(quick_gbdt());
    let lm = classification_eval(&data, FeatureSet::LM, &m, 1).unwrap();
    let tm = classification_eval(&data, FeatureSet::TM, &m, 1).unwrap();
    assert!(
        (lm.weighted_f1 - tm.weighted_f1).abs() < 0.1,
        "L+M F1 {:.2} and T+M F1 {:.2} should be comparable",
        lm.weighted_f1,
        tm.weighted_f1
    );
}

#[test]
fn classification_scores_reach_paper_band() {
    // Table 7: with mobility features the weighted-F1 is consistently high
    // (paper ≥0.89 at full campaign scale; require ≥0.8 at test scale).
    let data = airport_data(106);
    let out =
        classification_eval(&data, FeatureSet::LM, &ModelKind::Gdbt(quick_gbdt()), 1).unwrap();
    assert!(
        out.weighted_f1 > 0.8,
        "weighted F1 = {:.2}",
        out.weighted_f1
    );
    assert!(out.low_recall > 0.7, "low recall = {:.2}", out.low_recall);
}

#[test]
fn pipeline_then_model_is_reproducible() {
    // Identical seeds must give bit-identical metrics end-to-end.
    let a = airport_data(107);
    let b = airport_data(107);
    assert_eq!(a.len(), b.len());
    let m = ModelKind::Gdbt(quick_gbdt());
    let ra = regression_eval(&a, FeatureSet::LM, &m, 5).unwrap();
    let rb = regression_eval(&b, FeatureSet::LM, &m, 5).unwrap();
    assert_eq!(ra.mae, rb.mae);
    assert_eq!(ra.rmse, rb.rmse);
}

#[test]
fn csv_roundtrip_preserves_model_input() {
    // The public-dataset export must carry everything the models need.
    let data = airport_data(108);
    let csv = data.to_csv();
    let back = lumos5g_sim::Dataset::from_csv(&csv).unwrap();
    assert_eq!(back.len(), data.len());
    let m = ModelKind::Gdbt(quick_gbdt());
    let orig = regression_eval(&data, FeatureSet::TM, &m, 3).unwrap();
    let roundtrip = regression_eval(&back, FeatureSet::TM, &m, 3).unwrap();
    // CSV rounds floats, which can flip individual tree splits; the trained
    // model's quality must still agree closely.
    assert!(
        (orig.mae - roundtrip.mae).abs() < 0.1 * orig.mae,
        "orig {:.1} vs roundtrip {:.1}",
        orig.mae,
        roundtrip.mae
    );
    assert_eq!(orig.n_test, roundtrip.n_test);
}
