//! Integration tests for the §4 statistical findings: the simulated
//! substrate must reproduce the paper's measurement phenomenology, not just
//! allow models to train.

use lumos5g_geo::GridIndex;
use lumos5g_sim::{
    airport, loop_area, quality, run_campaign, CampaignConfig, Dataset, MobilityMode,
};
use lumos5g_stats as stats;
use lumos5g_stats::htest;

fn campaign(seed: u64, mode: MobilityMode, passes: usize) -> (Dataset, lumos5g_sim::Area) {
    let area = airport(seed);
    let cfg = CampaignConfig {
        passes_per_trajectory: passes,
        mode,
        max_duration_s: 400,
        base_seed: seed,
        bad_gps_fraction: 0.0,
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);
    let (d, _) = quality::apply(&raw, &area.frame, &Default::default());
    (d, area)
}

#[test]
fn most_cell_pairs_differ_significantly() {
    // Table 5: ~70% of geolocation pairs have significantly different mean
    // throughput — location carries signal.
    let (data, _) = campaign(201, MobilityMode::walking(), 8);
    let groups: Vec<Vec<f64>> = data
        .throughput_by_cell(&GridIndex::paper_map_grid())
        .into_values()
        .filter(|v| v.len() >= 8)
        .collect();
    assert!(groups.len() > 50, "need enough cells, got {}", groups.len());
    let mut sig = 0;
    let mut total = 0;
    for i in 0..groups.len().min(80) {
        for j in (i + 1)..groups.len().min(80) {
            if let Ok(r) = htest::welch_t_test(&groups[i], &groups[j]) {
                total += 1;
                if r.p_value < 0.1 {
                    sig += 1;
                }
            }
        }
    }
    let frac = sig as f64 / total as f64;
    assert!(
        (0.5..0.95).contains(&frac),
        "significant-pair fraction {frac:.2} outside the paper's band"
    );
}

#[test]
fn same_location_still_varies_substantially() {
    // §4.1: ~half the cells have CV ≥ 50% — location alone cannot predict.
    let (data, _) = campaign(202, MobilityMode::walking(), 8);
    let groups: Vec<Vec<f64>> = data
        .throughput_by_cell(&GridIndex::paper_map_grid())
        .into_values()
        .filter(|v| v.len() >= 10)
        .collect();
    let cvs: Vec<f64> = groups
        .iter()
        .filter_map(|g| stats::coefficient_of_variation(g).ok())
        .collect();
    let high = cvs.iter().filter(|&&c| c >= 0.5).count() as f64 / cvs.len() as f64;
    assert!(
        (0.15..0.8).contains(&high),
        "fraction of high-CV cells {high:.2} implausible"
    );
}

#[test]
fn direction_conditioning_raises_trace_correlation() {
    // §4.2 / Fig 10: same-direction traces correlate strongly; opposite
    // directions do not.
    let (data, _) = campaign(203, MobilityMode::walking(), 8);
    let traces = data.traces();
    let nb: Vec<&Vec<f64>> = traces
        .iter()
        .filter(|((t, _), _)| *t == 0)
        .map(|(_, v)| v)
        .collect();
    let sb: Vec<&Vec<f64>> = traces
        .iter()
        .filter(|((t, _), _)| *t == 1)
        .map(|(_, v)| v)
        .collect();

    let resample =
        |tr: &[f64]| -> Vec<f64> { (0..100).map(|i| tr[i * (tr.len() - 1) / 99]).collect() };
    let mut same = Vec::new();
    for i in 0..nb.len() {
        for j in (i + 1)..nb.len() {
            same.push(
                stats::spearman(&resample(nb[i]), &resample(nb[j]))
                    .unwrap()
                    .rho,
            );
        }
    }
    let mut cross = Vec::new();
    for a in &nb {
        for b in &sb {
            cross.push(stats::spearman(&resample(a), &resample(b)).unwrap().rho);
        }
    }
    let same_mean = same.iter().sum::<f64>() / same.len() as f64;
    let cross_mean = cross.iter().sum::<f64>() / cross.len() as f64;
    assert!(
        same_mean > cross_mean + 0.3,
        "same-direction ρ {same_mean:.2} should dominate cross ρ {cross_mean:.2}"
    );
    assert!(same_mean > 0.5, "same-direction ρ {same_mean:.2} too low");
    assert!(
        cross_mean.abs() < 0.35,
        "cross-direction ρ {cross_mean:.2} too high"
    );
}

#[test]
fn driving_fast_degrades_throughput_but_walking_does_not() {
    // §4.6 / Fig 14: median throughput collapses beyond ~5 km/h when
    // driving; walking speed has no comparable effect.
    let area = loop_area(204);
    let mk = |mode: MobilityMode| {
        let cfg = CampaignConfig {
            passes_per_trajectory: 3,
            mode,
            max_duration_s: 1100,
            base_seed: 204,
            bad_gps_fraction: 0.0,
            ..Default::default()
        };
        let raw = run_campaign(&area, &cfg);
        quality::apply(&raw, &area.frame, &Default::default()).0
    };
    let drive = mk(MobilityMode::driving());
    let walk = mk(MobilityMode::walking());

    let med = |d: &Dataset, lo_kmh: f64, hi_kmh: f64| -> f64 {
        let v: Vec<f64> = d
            .records
            .iter()
            .filter(|r| {
                let kmh = r.true_speed_mps * 3.6;
                kmh >= lo_kmh && kmh < hi_kmh
            })
            .map(|r| r.throughput_mbps)
            .collect();
        stats::median(&v).unwrap_or(f64::NAN)
    };
    let drive_slow = med(&drive, 0.0, 5.0);
    let drive_fast = med(&drive, 25.0, 45.0);
    assert!(
        drive_fast < 0.5 * drive_slow,
        "fast driving {drive_fast:.0} should be well below slow {drive_slow:.0}"
    );
    // Paper: fast driving falls to 4G-like 60–164 Mbps.
    assert!(
        drive_fast < 350.0,
        "fast driving median {drive_fast:.0} too high"
    );

    // Free-flow walking bins (slower bins are dominated by the few seconds
    // of accel/decel next to stop points, a location artifact).
    let walk_slow = med(&walk, 4.0, 5.5);
    let walk_fast = med(&walk, 5.5, 8.0);
    assert!(
        walk_fast > 0.6 * walk_slow && walk_fast < 1.8 * walk_slow,
        "walking throughput should be flat in speed: slow {walk_slow:.0} fast {walk_fast:.0}"
    );
}

#[test]
fn handoff_patches_exist_and_cause_dips() {
    // Fig 9's cyan patches: seconds around a handoff have lower throughput
    // than steady-state seconds.
    let (data, _) = campaign(205, MobilityMode::walking(), 6);
    let ho: Vec<f64> = data
        .records
        .iter()
        .filter(|r| r.horizontal_handoff || r.vertical_handoff)
        .map(|r| r.throughput_mbps)
        .collect();
    let steady: Vec<f64> = data
        .records
        .iter()
        .filter(|r| !r.horizontal_handoff && !r.vertical_handoff)
        .map(|r| r.throughput_mbps)
        .collect();
    assert!(ho.len() > 20, "need handoffs, got {}", ho.len());
    let m_ho = stats::mean(&ho).unwrap();
    let m_st = stats::mean(&steady).unwrap();
    assert!(
        m_ho < m_st,
        "handoff seconds ({m_ho:.0}) should underperform steady seconds ({m_st:.0})"
    );
}

#[test]
fn five_g_dead_zones_fall_back_to_lte() {
    // §1: 5G "dead zones" exist; in them the UE is on LTE with 4G-like
    // throughput.
    let area = loop_area(206);
    let cfg = CampaignConfig {
        passes_per_trajectory: 2,
        mode: MobilityMode::walking(),
        max_duration_s: 1100,
        base_seed: 206,
        bad_gps_fraction: 0.0,
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);
    let (data, _) = quality::apply(&raw, &area.frame, &Default::default());
    let lte: Vec<&lumos5g_sim::Record> = data.records.iter().filter(|r| !r.on_5g).collect();
    assert!(
        lte.len() > data.len() / 50,
        "the park edge should force LTE fallback ({} of {})",
        lte.len(),
        data.len()
    );
    let m: f64 = lte.iter().map(|r| r.throughput_mbps).sum::<f64>() / lte.len() as f64;
    assert!(m < 300.0, "LTE throughput should be 4G-like, got {m:.0}");
}
