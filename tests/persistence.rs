//! Cold-start integration: a serving engine restored from disk via
//! `ModelRegistry::load_dir` must serve predictions bit-identical to the
//! engine that trained the model — with zero retraining.

use lumos5g::persist::{self, TrainingCheckpoint};
use lumos5g::{FeatureSet, FeatureSpec, Lumos5G, ModelKind, TrainedRegressor};
use lumos5g_ml::codec::ByteWriter;
use lumos5g_ml::forest::ForestConfig;
use lumos5g_ml::{GbdtConfig, GbdtRegressor, Seq2Seq, Seq2SeqConfig};
use lumos5g_serve::{Engine, EngineConfig, ModelRegistry, OverloadPolicy, ReplaySource};
use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig, Dataset};
use std::path::PathBuf;
use std::sync::Arc;

fn serving_data(seed: u64) -> Dataset {
    let area = airport(seed);
    let cfg = CampaignConfig {
        passes_per_trajectory: 2,
        max_duration_s: 160,
        base_seed: seed,
        bad_gps_fraction: 0.0,
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);
    quality::apply(&raw, &area.frame, &Default::default()).0
}

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        shards: 3,
        queue_capacity: 256,
        policy: OverloadPolicy::Block,
        ..Default::default()
    }
}

/// One replayed response: `(ue, pass, t, prediction bits, horizon bits)`.
/// The horizon entry is `None` for single-row families and warm-ups.
type ReplayKey = (u64, u32, u32, Option<u64>, Option<Vec<u64>>);

/// Replay `src` through an engine built from `registry`; predictions keyed
/// by (ue, pass, t) so runs with different shard interleavings compare.
fn replay(registry: Arc<ModelRegistry>, src: &ReplaySource) -> Vec<ReplayKey> {
    let engine = Engine::start_with_registry(registry, engine_cfg());
    let stats = src.run(&engine, 0.0);
    assert_eq!(stats.shed, 0);
    let (report, responses) = engine.shutdown();
    assert_eq!(report.processed, stats.submitted);
    let mut out: Vec<_> = responses
        .iter()
        .map(|p| {
            (
                p.ue,
                p.pass_id,
                p.t,
                p.predicted_mbps.map(f64::to_bits),
                p.horizon_mbps
                    .as_ref()
                    .map(|h| h.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()),
            )
        })
        .collect();
    out.sort_unstable();
    out
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("l5gm-coldstart-{tag}-{}", std::process::id()))
}

#[test]
fn cold_start_serves_bit_identical_predictions_for_every_family() {
    let data = serving_data(71);
    let src = ReplaySource::from_dataset(&data, 6);
    let mut gbdt = lumos5g::quick_gbdt();
    gbdt.n_estimators = 40;
    let families: Vec<(&str, ModelKind)> = vec![
        ("gdbt", ModelKind::Gdbt(gbdt)),
        ("knn", ModelKind::Knn { k: 5 }),
        (
            "rf",
            ModelKind::RandomForest(ForestConfig {
                n_trees: 12,
                ..Default::default()
            }),
        ),
    ];
    for (name, kind) in families {
        let model = Lumos5G::new(FeatureSet::LM, kind)
            .fit_regression(&data)
            .unwrap();

        // Warm path: serve the freshly trained model and persist it.
        let warm = Arc::new(ModelRegistry::new(model));
        let dir = temp_dir(name);
        std::fs::remove_dir_all(&dir).ok();
        warm.store(&dir).unwrap();
        let warm_preds = replay(warm, &src);

        // Cold path: a "restarted" process restores the registry from disk
        // — no Dataset, no fit — and must reproduce every prediction bit.
        let cold = Arc::new(ModelRegistry::load_dir(&dir).unwrap());
        assert_eq!(cold.version(), 1, "{name}: saved version must survive");
        let cold_preds = replay(cold, &src);

        assert_eq!(warm_preds.len(), cold_preds.len(), "{name}");
        for (w, c) in warm_preds.iter().zip(&cold_preds) {
            assert_eq!(w, c, "{name}: cold-start prediction diverged");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The `.l5gm` gap this PR closes: a Seq2Seq engine must cold-start from
/// disk with zero retraining and serve the full k-step horizon with the
/// exact bits of the warm engine — config, LSTM weights, head and both
/// scalers all survive the raw-bit round trip.
#[test]
fn seq2seq_cold_start_serves_bit_identical_horizons() {
    let data = serving_data(79);
    let src = ReplaySource::from_dataset(&data, 5);
    let mut p = lumos5g::quick_seq2seq();
    p.epochs = 3;
    let model = Lumos5G::new(FeatureSet::LM, ModelKind::Seq2Seq(p))
        .fit_regression(&data)
        .unwrap();

    let warm = Arc::new(ModelRegistry::new(model));
    let dir = temp_dir("seq2seq");
    std::fs::remove_dir_all(&dir).ok();
    warm.store(&dir).unwrap();
    let warm_preds = replay(warm, &src);

    let cold = Arc::new(ModelRegistry::load_dir(&dir).unwrap());
    assert_eq!(cold.version(), 1, "saved version must survive");
    assert!(
        matches!(*cold.current().regressor, TrainedRegressor::Seq2Seq { .. }),
        "family must survive the round trip"
    );
    let cold_preds = replay(cold, &src);

    // The cold engine must detect sequence mode from the restored model
    // (seq2seq_params survived) and actually serve horizons.
    assert!(
        cold_preds.iter().any(|k| k.4.is_some()),
        "cold-started engine served no horizons"
    );
    assert_eq!(warm_preds.len(), cold_preds.len());
    for (w, c) in warm_preds.iter().zip(&cold_preds) {
        assert_eq!(w, c, "cold-start sequence prediction diverged");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_dir_restores_the_latest_of_several_saved_versions() {
    let data = serving_data(73);
    let dir = temp_dir("versions");
    std::fs::remove_dir_all(&dir).ok();

    let registry = ModelRegistry::new(
        Lumos5G::new(FeatureSet::L, ModelKind::Knn { k: 3 })
            .fit_regression(&data)
            .unwrap(),
    );
    registry.store(&dir).unwrap(); // model-v1: KNN
    let mut cfg = lumos5g::quick_gbdt();
    cfg.n_estimators = 20;
    registry.swap(
        Lumos5G::new(FeatureSet::LM, ModelKind::Gdbt(cfg))
            .fit_regression(&data)
            .unwrap(),
    );
    registry.store(&dir).unwrap(); // model-v2: GDBT

    let restored = ModelRegistry::load_dir(&dir).unwrap();
    assert_eq!(restored.version(), 2);
    assert!(matches!(
        *restored.current().regressor,
        TrainedRegressor::Gdbt { .. }
    ));
    // The restored v2 must be the same model bit-for-bit.
    let (_, want) = registry.current().regressor.eval(&data);
    let (_, got) = restored.current().regressor.eval(&data);
    assert_eq!(want.len(), got.len());
    for (w, g) in want.iter().zip(&got) {
        assert_eq!(w.to_bits(), g.to_bits());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Torn-write chaos: whatever survives a crash mid-write — the newest
/// generation truncated to ANY byte length, or any single bit flipped —
/// a cold start must land on the last durable generation, report exactly
/// one skipped checkpoint, and never decode a torn model.
#[test]
fn torn_checkpoints_always_fall_back_to_the_last_durable_generation() {
    let data = serving_data(83);
    let dir = temp_dir("torn");
    std::fs::remove_dir_all(&dir).ok();

    let registry = ModelRegistry::new(
        Lumos5G::new(FeatureSet::L, ModelKind::Knn { k: 3 })
            .fit_regression(&data)
            .unwrap(),
    );
    registry.store(&dir).unwrap(); // gen-1: the durable fallback
    let mut cfg = lumos5g::quick_gbdt();
    cfg.n_estimators = 4;
    cfg.max_depth = 2;
    registry.swap(
        Lumos5G::new(FeatureSet::LM, ModelKind::Gdbt(cfg))
            .fit_regression(&data)
            .unwrap(),
    );
    registry.store(&dir).unwrap(); // gen-2: the file we tear
    let gen2 = dir.join("model.gen-2.l5gm");
    let pristine = std::fs::read(&gen2).unwrap();
    assert!(pristine.len() > 16, "container must be non-trivial");

    let fallback_to_gen1 = |tag: &str, bytes: &[u8]| -> Arc<ModelRegistry> {
        std::fs::write(&gen2, bytes).unwrap();
        let (restored, report) = ModelRegistry::load_dir_report(&dir).unwrap();
        assert_eq!(report.version, 1, "{tag}: must fall back to gen-1");
        assert_eq!(report.skipped.len(), 1, "{tag}: torn gen-2 goes unreported");
        assert_eq!(report.skipped[0].version, 2, "{tag}");
        Arc::new(restored)
    };
    // Every truncation length, 0 (empty file) through len-1.
    let mut last = None;
    for cut in 0..pristine.len() {
        last = Some(fallback_to_gen1(
            &format!("truncated to {cut} bytes"),
            &pristine[..cut],
        ));
    }
    // Every single-bit corruption position (one bit per byte: the CRC is
    // position-sensitive, so one representative bit per byte suffices).
    for i in 0..pristine.len() {
        last = Some(fallback_to_gen1(&format!("bit flipped at byte {i}"), &{
            let mut b = pristine.clone();
            b[i] ^= 1;
            b
        }));
    }
    // The fallback is the real durable generation, bit for bit.
    let eval_slice = Dataset::new(data.records[..40.min(data.len())].to_vec());
    let (want_model, gen) = ModelRegistry::load_generation_below(&dir, 2).unwrap();
    assert_eq!(gen, 1);
    let (_, want) = want_model.eval(&eval_slice);
    let (_, got) = last.unwrap().current().regressor.eval(&eval_slice);
    assert_eq!(want.len(), got.len());
    for (w, g) in want.iter().zip(&got) {
        assert_eq!(w.to_bits(), g.to_bits(), "fallback model diverged");
    }

    // An orphaned temp file from a crashed atomic_write is not a
    // generation: restoring the pristine bytes must serve gen-2 cleanly.
    std::fs::write(dir.join("model.gen-9.l5gm.12345.tmp"), b"torn garbage").unwrap();
    std::fs::write(&gen2, &pristine).unwrap();
    let (restored, report) = ModelRegistry::load_dir_report(&dir).unwrap();
    assert_eq!(report.version, 2, "pristine gen-2 must serve again");
    assert!(report.skipped.is_empty(), "nothing to skip once repaired");
    assert!(matches!(
        *restored.current().regressor,
        TrainedRegressor::Gdbt { .. }
    ));
    std::fs::remove_dir_all(&dir).ok();
}

/// Interrupt GDBT training at every on-disk checkpoint, restart from the
/// file, and the final model must match the uninterrupted fit all the way
/// down to its serialized `.l5gm` bytes.
#[test]
fn gdbt_training_resumed_from_any_on_disk_checkpoint_is_bit_identical() {
    let dir = temp_dir("gdbt-resume");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let xs: Vec<Vec<f64>> = (0..120)
        .map(|i| vec![(i % 17) as f64, (i % 5) as f64, (i / 3) as f64])
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|r| 2.0 * r[0] - 0.5 * r[1] + 0.25 * r[2])
        .collect();
    let cfg = GbdtConfig {
        n_estimators: 10,
        max_depth: 3,
        learning_rate: 0.2,
        min_samples_leaf: 2,
        subsample: 0.7, // subsampling: the RNG replay matters
        seed: 9,
    };
    let spec = FeatureSpec::new(FeatureSet::L);
    let final_path = dir.join("final.l5gm");
    let bytes_of = |model: GbdtRegressor| -> Vec<u8> {
        persist::save_regressor(&TrainedRegressor::Gdbt { model, spec }, &final_path).unwrap();
        std::fs::read(&final_path).unwrap()
    };
    let want = bytes_of(GbdtRegressor::fit(&xs, &ys, &cfg));

    // One probe run writes every checkpoint through the atomic writer,
    // keeping a copy per interrupt point.
    let live = dir.join("train.ckpt.l5gm");
    let mut rounds_seen = Vec::new();
    let probe = GbdtRegressor::fit_resumable(&xs, &ys, &cfg, None, 2, |ck| {
        persist::save_checkpoint(&TrainingCheckpoint::Gdbt(ck.clone()), &live).unwrap();
        std::fs::copy(
            &live,
            dir.join(format!("train.{}.ckpt.l5gm", ck.rounds_done)),
        )
        .unwrap();
        rounds_seen.push(ck.rounds_done);
    });
    assert_eq!(bytes_of(probe), want, "checkpointing must not perturb");
    assert_eq!(rounds_seen, vec![2, 4, 6, 8]);

    for rounds in rounds_seen {
        let path = dir.join(format!("train.{rounds}.ckpt.l5gm"));
        let ck = match persist::load_checkpoint(&path).unwrap() {
            TrainingCheckpoint::Gdbt(ck) => ck,
            _ => panic!("wrong checkpoint kind at {}", path.display()),
        };
        assert_eq!(ck.rounds_done, rounds);
        let resumed = GbdtRegressor::fit_resumable(&xs, &ys, &cfg, Some(ck), 0, |_| {});
        assert_eq!(
            bytes_of(resumed),
            want,
            "resume from round {rounds} diverged"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The Seq2Seq twin of the test above: epoch checkpoints — weights, Adam
/// moments, RNG position — survive the `.l5gm` file round trip and resume
/// to the exact bits of an uninterrupted training run.
#[test]
fn seq2seq_training_resumed_from_any_on_disk_checkpoint_is_bit_identical() {
    let dir = temp_dir("s2s-resume");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let cfg = Seq2SeqConfig {
        input_dim: 2,
        hidden: 5,
        layers: 1,
        horizon: 3,
        epochs: 7,
        batch_size: 8,
        lr: 5e-3,
        teacher_forcing: 0.5, // partial forcing: the RNG stream matters
        clip_norm: 5.0,
        seed: 3,
    };
    let inputs: Vec<Vec<Vec<f64>>> = (0..18)
        .map(|s| {
            (0..8)
                .map(|t| vec![((s + t) as f64 * 0.37).sin(), (t as f64 * 0.21).cos()])
                .collect()
        })
        .collect();
    let targets: Vec<Vec<f64>> = (0..18)
        .map(|s| (0..3).map(|t| ((s + 8 + t) as f64 * 0.37).sin()).collect())
        .collect();
    let model_bytes = |m: &Seq2Seq| -> Vec<u8> {
        let mut w = ByteWriter::new();
        m.encode(&mut w);
        w.into_bytes()
    };

    let mut uninterrupted = Seq2Seq::new(cfg);
    uninterrupted.train(&inputs, &targets);
    let want = model_bytes(&uninterrupted);

    let live = dir.join("s2s.ckpt.l5gm");
    let mut epochs_seen = Vec::new();
    let mut probe = Seq2Seq::new(cfg);
    probe.train_resumable(&inputs, &targets, 0.0, 0, None, 2, |st| {
        persist::save_checkpoint(&TrainingCheckpoint::Seq2Seq(Box::new(st.clone())), &live)
            .unwrap();
        std::fs::copy(
            &live,
            dir.join(format!("s2s.{}.ckpt.l5gm", st.epochs_done())),
        )
        .unwrap();
        epochs_seen.push(st.epochs_done());
    });
    assert_eq!(model_bytes(&probe), want, "checkpointing must not perturb");
    assert_eq!(epochs_seen, vec![2, 4, 6]);

    for epochs in epochs_seen {
        let path = dir.join(format!("s2s.{epochs}.ckpt.l5gm"));
        let st = match persist::load_checkpoint(&path).unwrap() {
            TrainingCheckpoint::Seq2Seq(st) => *st,
            _ => panic!("wrong checkpoint kind at {}", path.display()),
        };
        assert_eq!(st.epochs_done(), epochs);
        let mut resumed = Seq2Seq::new(cfg);
        resumed.train_resumable(&inputs, &targets, 0.0, 0, Some(st), 0, |_| {});
        assert_eq!(
            model_bytes(&resumed),
            want,
            "resume from epoch {epochs} diverged"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
