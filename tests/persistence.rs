//! Cold-start integration: a serving engine restored from disk via
//! `ModelRegistry::load_dir` must serve predictions bit-identical to the
//! engine that trained the model — with zero retraining.

use lumos5g::{FeatureSet, Lumos5G, ModelKind, TrainedRegressor};
use lumos5g_ml::forest::ForestConfig;
use lumos5g_serve::{Engine, EngineConfig, ModelRegistry, OverloadPolicy, ReplaySource};
use lumos5g_sim::{airport, quality, run_campaign, CampaignConfig, Dataset};
use std::path::PathBuf;
use std::sync::Arc;

fn serving_data(seed: u64) -> Dataset {
    let area = airport(seed);
    let cfg = CampaignConfig {
        passes_per_trajectory: 2,
        max_duration_s: 160,
        base_seed: seed,
        bad_gps_fraction: 0.0,
        ..Default::default()
    };
    let raw = run_campaign(&area, &cfg);
    quality::apply(&raw, &area.frame, &Default::default()).0
}

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        shards: 3,
        queue_capacity: 256,
        policy: OverloadPolicy::Block,
        ..Default::default()
    }
}

/// One replayed response: `(ue, pass, t, prediction bits, horizon bits)`.
/// The horizon entry is `None` for single-row families and warm-ups.
type ReplayKey = (u64, u32, u32, Option<u64>, Option<Vec<u64>>);

/// Replay `src` through an engine built from `registry`; predictions keyed
/// by (ue, pass, t) so runs with different shard interleavings compare.
fn replay(registry: Arc<ModelRegistry>, src: &ReplaySource) -> Vec<ReplayKey> {
    let engine = Engine::start_with_registry(registry, engine_cfg());
    let stats = src.run(&engine, 0.0);
    assert_eq!(stats.shed, 0);
    let (report, responses) = engine.shutdown();
    assert_eq!(report.processed, stats.submitted);
    let mut out: Vec<_> = responses
        .iter()
        .map(|p| {
            (
                p.ue,
                p.pass_id,
                p.t,
                p.predicted_mbps.map(f64::to_bits),
                p.horizon_mbps
                    .as_ref()
                    .map(|h| h.iter().map(|v| v.to_bits()).collect::<Vec<u64>>()),
            )
        })
        .collect();
    out.sort_unstable();
    out
}

fn temp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("l5gm-coldstart-{tag}-{}", std::process::id()))
}

#[test]
fn cold_start_serves_bit_identical_predictions_for_every_family() {
    let data = serving_data(71);
    let src = ReplaySource::from_dataset(&data, 6);
    let mut gbdt = lumos5g::quick_gbdt();
    gbdt.n_estimators = 40;
    let families: Vec<(&str, ModelKind)> = vec![
        ("gdbt", ModelKind::Gdbt(gbdt)),
        ("knn", ModelKind::Knn { k: 5 }),
        (
            "rf",
            ModelKind::RandomForest(ForestConfig {
                n_trees: 12,
                ..Default::default()
            }),
        ),
    ];
    for (name, kind) in families {
        let model = Lumos5G::new(FeatureSet::LM, kind)
            .fit_regression(&data)
            .unwrap();

        // Warm path: serve the freshly trained model and persist it.
        let warm = Arc::new(ModelRegistry::new(model));
        let dir = temp_dir(name);
        std::fs::remove_dir_all(&dir).ok();
        warm.store(&dir).unwrap();
        let warm_preds = replay(warm, &src);

        // Cold path: a "restarted" process restores the registry from disk
        // — no Dataset, no fit — and must reproduce every prediction bit.
        let cold = Arc::new(ModelRegistry::load_dir(&dir).unwrap());
        assert_eq!(cold.version(), 1, "{name}: saved version must survive");
        let cold_preds = replay(cold, &src);

        assert_eq!(warm_preds.len(), cold_preds.len(), "{name}");
        for (w, c) in warm_preds.iter().zip(&cold_preds) {
            assert_eq!(w, c, "{name}: cold-start prediction diverged");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The `.l5gm` gap this PR closes: a Seq2Seq engine must cold-start from
/// disk with zero retraining and serve the full k-step horizon with the
/// exact bits of the warm engine — config, LSTM weights, head and both
/// scalers all survive the raw-bit round trip.
#[test]
fn seq2seq_cold_start_serves_bit_identical_horizons() {
    let data = serving_data(79);
    let src = ReplaySource::from_dataset(&data, 5);
    let mut p = lumos5g::quick_seq2seq();
    p.epochs = 3;
    let model = Lumos5G::new(FeatureSet::LM, ModelKind::Seq2Seq(p))
        .fit_regression(&data)
        .unwrap();

    let warm = Arc::new(ModelRegistry::new(model));
    let dir = temp_dir("seq2seq");
    std::fs::remove_dir_all(&dir).ok();
    warm.store(&dir).unwrap();
    let warm_preds = replay(warm, &src);

    let cold = Arc::new(ModelRegistry::load_dir(&dir).unwrap());
    assert_eq!(cold.version(), 1, "saved version must survive");
    assert!(
        matches!(*cold.current().regressor, TrainedRegressor::Seq2Seq { .. }),
        "family must survive the round trip"
    );
    let cold_preds = replay(cold, &src);

    // The cold engine must detect sequence mode from the restored model
    // (seq2seq_params survived) and actually serve horizons.
    assert!(
        cold_preds.iter().any(|k| k.4.is_some()),
        "cold-started engine served no horizons"
    );
    assert_eq!(warm_preds.len(), cold_preds.len());
    for (w, c) in warm_preds.iter().zip(&cold_preds) {
        assert_eq!(w, c, "cold-start sequence prediction diverged");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn load_dir_restores_the_latest_of_several_saved_versions() {
    let data = serving_data(73);
    let dir = temp_dir("versions");
    std::fs::remove_dir_all(&dir).ok();

    let registry = ModelRegistry::new(
        Lumos5G::new(FeatureSet::L, ModelKind::Knn { k: 3 })
            .fit_regression(&data)
            .unwrap(),
    );
    registry.store(&dir).unwrap(); // model-v1: KNN
    let mut cfg = lumos5g::quick_gbdt();
    cfg.n_estimators = 20;
    registry.swap(
        Lumos5G::new(FeatureSet::LM, ModelKind::Gdbt(cfg))
            .fit_regression(&data)
            .unwrap(),
    );
    registry.store(&dir).unwrap(); // model-v2: GDBT

    let restored = ModelRegistry::load_dir(&dir).unwrap();
    assert_eq!(restored.version(), 2);
    assert!(matches!(
        *restored.current().regressor,
        TrainedRegressor::Gdbt { .. }
    ));
    // The restored v2 must be the same model bit-for-bit.
    let (_, want) = registry.current().regressor.eval(&data);
    let (_, got) = restored.current().regressor.eval(&data);
    assert_eq!(want.len(), got.len());
    for (w, g) in want.iter().zip(&got) {
        assert_eq!(w.to_bits(), g.to_bits());
    }
    std::fs::remove_dir_all(&dir).ok();
}
