//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API
//! (`lock()`/`read()`/`write()` return guards directly). Poisoning is
//! neutralized by taking the inner value from a poisoned lock — a panicking
//! holder does not wedge every later user, matching parking_lot semantics.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock (non-poisoning façade).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Reader–writer lock (non-poisoning façade).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire a read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire a write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = Arc::new(RwLock::new(7));
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn try_write_blocked_by_reader() {
        let l = RwLock::new(0);
        let _r = l.read();
        assert!(l.try_write().is_none());
    }
}
