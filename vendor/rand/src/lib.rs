//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the exact API subset it uses: `StdRng` (+`SeedableRng::seed_from_u64`),
//! the `Rng` extension trait (`gen`, `gen_range`, `gen_bool`) and
//! `seq::SliceRandom::{shuffle, choose}`.
//!
//! The generator is **xoshiro256++** seeded through SplitMix64 — a
//! different stream than upstream `StdRng` (ChaCha12), but statistically
//! strong (passes BigCrush), which is what the simulator's noise models and
//! the repo's distributional tests actually rely on. Determinism per seed
//! is preserved: identical seeds give identical streams on every platform.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from an RNG (stand-in for the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → [0, 1), the same construction upstream
        // rand uses for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty f64 range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

/// Unbiased integer in [0, span) by rejection (Lemire-style threshold).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

/// User-facing extension trait, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of `T` (f64 → [0, 1)).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding routine.
            let mut z = seed;
            let mut next = || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = Self::rotl(s[0].wrapping_add(s[3]), 23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = Self::rotl(s[3], 45);
            result
        }
    }
}

/// Slice helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random choice on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element (None when empty).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_mean_is_half() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = r.gen_range(2u32..=4);
            assert!((2..=4).contains(&w));
            let f = r.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use super::seq::SliceRandom;
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
