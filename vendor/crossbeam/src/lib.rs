//! Offline stand-in for `crossbeam`: the `channel` module only.
//!
//! Implements multi-producer multi-consumer bounded/unbounded channels on a
//! `Mutex<VecDeque>` + two condvars. Not lock-free like the real crate, but
//! API-compatible for the subset the workspace uses and easily fast enough
//! for per-event serving work (µs-scale critical sections).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        capacity: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Sending half; clonable (MPMC).
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Receiving half; clonable (MPMC).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// The channel is disconnected (no receivers left).
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Why a `try_send` failed.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// Bounded queue at capacity.
        Full(T),
        /// No receivers left.
        Disconnected(T),
    }

    /// All senders dropped and the queue is drained.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Why a `try_recv` failed.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Queue currently empty.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// Why a `recv_timeout` failed.
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// Deadline elapsed with no message.
        Timeout,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Create a bounded channel with the given capacity (`cap >= 1`).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.senders.fetch_add(1, Ordering::SeqCst);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.inner.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Wake receivers blocked on an empty queue so they observe
                // the disconnect.
                let _guard = self.inner.queue.lock().unwrap();
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if self.inner.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
                let _guard = self.inner.queue.lock().unwrap();
                self.inner.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Blocking send; fails only when every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut q = self.inner.queue.lock().unwrap();
            loop {
                if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                    return Err(SendError(msg));
                }
                match self.inner.capacity {
                    Some(cap) if q.len() >= cap => {
                        q = self.inner.not_full.wait(q).unwrap();
                    }
                    _ => break,
                }
            }
            q.push_back(msg);
            drop(q);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut q = self.inner.queue.lock().unwrap();
            if self.inner.receivers.load(Ordering::SeqCst) == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if let Some(cap) = self.inner.capacity {
                if q.len() >= cap {
                    return Err(TrySendError::Full(msg));
                }
            }
            q.push_back(msg);
            drop(q);
            self.inner.not_empty.notify_one();
            Ok(())
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; fails when all senders dropped and drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.inner.queue.lock().unwrap();
            loop {
                if let Some(msg) = q.pop_front() {
                    drop(q);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                q = self.inner.not_empty.wait(q).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.inner.queue.lock().unwrap();
            if let Some(msg) = q.pop_front() {
                drop(q);
                self.inner.not_full.notify_one();
                return Ok(msg);
            }
            if self.inner.senders.load(Ordering::SeqCst) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut q = self.inner.queue.lock().unwrap();
            loop {
                if let Some(msg) = q.pop_front() {
                    drop(q);
                    self.inner.not_full.notify_one();
                    return Ok(msg);
                }
                if self.inner.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) = self
                    .inner
                    .not_empty
                    .wait_timeout(q, deadline - now)
                    .unwrap();
                q = guard;
                if res.timed_out() && q.is_empty() {
                    if self.inner.senders.load(Ordering::SeqCst) == 0 {
                        return Err(RecvTimeoutError::Disconnected);
                    }
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.queue.lock().unwrap().len()
        }

        /// True when no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Iterate until the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn fifo_per_sender() {
            let (tx, rx) = unbounded();
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            for i in 0..100 {
                assert_eq!(rx.recv().unwrap(), i);
            }
        }

        #[test]
        fn bounded_try_send_fills() {
            let (tx, rx) = bounded(2);
            tx.try_send(1).unwrap();
            tx.try_send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            assert_eq!(rx.try_recv().unwrap(), 1);
            tx.try_send(3).unwrap();
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(5).unwrap();
            drop(tx);
            assert_eq!(rx.recv().unwrap(), 5);
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn disconnect_on_receiver_drop() {
            let (tx, rx) = bounded::<u32>(1);
            drop(rx);
            assert!(matches!(tx.send(1), Err(SendError(1))));
        }

        #[test]
        fn cross_thread_transfer() {
            let (tx, rx) = bounded(8);
            let h = thread::spawn(move || {
                let mut sum = 0u64;
                while let Ok(v) = rx.recv() {
                    sum += v;
                }
                sum
            });
            for i in 1..=1000u64 {
                tx.send(i).unwrap();
            }
            drop(tx);
            assert_eq!(h.join().unwrap(), 500_500);
        }

        #[test]
        fn recv_timeout_expires() {
            let (_tx, rx) = bounded::<u32>(1);
            let err = rx.recv_timeout(Duration::from_millis(20)).unwrap_err();
            assert_eq!(err, RecvTimeoutError::Timeout);
        }
    }
}
