//! Offline stand-in for `criterion`.
//!
//! Implements the macro + builder surface the workspace's benches use
//! (`criterion_group!` with `name/config/targets`, `criterion_main!`,
//! `Criterion::default().sample_size(..).measurement_time(..)
//! .warm_up_time(..)`, `bench_function`, `Bencher::iter`/`iter_batched`,
//! `BatchSize`, `black_box`). Reports mean ns/iter to stdout — no plots,
//! no statistics beyond mean/min/max, but honest wall-clock timing.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How much setup output an `iter_batched` batch amortizes (accepted for
/// API compatibility; the stub always runs batches of one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Benchmark harness configuration + runner.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget for measurement.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Wall-clock budget for warm-up.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Accepted for API compatibility with `criterion_group!`-generated
    /// main functions; CLI arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples_ns: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut b);
        if b.samples_ns.is_empty() {
            println!("bench {id:<44} (no samples)");
            return self;
        }
        let n = b.samples_ns.len() as f64;
        let mean = b.samples_ns.iter().sum::<f64>() / n;
        let min = b.samples_ns.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = b.samples_ns.iter().cloned().fold(0.0, f64::max);
        println!(
            "bench {id:<44} {:>12} ns/iter (min {:>12}, max {:>12}, {} samples)",
            fmt_ns(mean),
            fmt_ns(min),
            fmt_ns(max),
            b.samples_ns.len()
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns:.1}ns")
    }
}

/// Passed to the closure given to [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: how many iterations fit the warm-up budget?
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let budget_ns = self.measurement_time.as_nanos() as f64;
        let iters_per_sample =
            ((budget_ns / self.sample_size as f64 / per_iter.max(1.0)).ceil() as u64).max(1);

        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }

    /// Time `routine` on fresh inputs produced by `setup` (setup excluded
    /// from the timing).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm-up: one run.
        let input = setup();
        let warm_start = Instant::now();
        black_box(routine(input));
        let per_iter = warm_start.elapsed().as_nanos() as f64;
        let budget_ns = self.measurement_time.as_nanos() as f64;
        let iters_per_sample =
            ((budget_ns / self.sample_size as f64 / per_iter.max(1.0)).ceil() as u64).max(1);

        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..iters_per_sample).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }
}

/// Define a named group of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
