//! Case runner: deterministic seeding, reject accounting, failure reporting.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Why a single generated case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// Assertion failure — the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs — try another case.
    Reject,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Runner configuration (subset of upstream's `Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
    /// Bail out after this many `prop_assume!` rejections in total.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Run exactly `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// FNV-1a over the test name: a stable per-test seed so failures reproduce
/// across runs and machines.
fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drive one property: repeatedly generate inputs and evaluate `case`
/// until `config.cases` successes. Panics on the first failure.
pub fn run<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let mut rng = StdRng::seed_from_u64(seed_of(name));
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property `{name}`: too many prop_assume! rejections \
                         ({rejected}) after {passed} passing cases"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` failed after {passed} passing cases: {msg}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut n = 0;
        run(&ProptestConfig::with_cases(10), "t", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn rejects_do_not_count() {
        let mut calls = 0;
        run(&ProptestConfig::with_cases(5), "t", |_| {
            calls += 1;
            if calls % 2 == 0 {
                Err(TestCaseError::Reject)
            } else {
                Ok(())
            }
        });
        assert!(calls > 5);
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failure_panics() {
        run(&ProptestConfig::with_cases(5), "t", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
