//! Value-generation strategies (no shrinking).

use rand::rngs::StdRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::Range;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Map the generated value through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Build a second strategy from the generated value and draw from it —
    /// the canonical way to generate dependent shapes (e.g. equal-length
    /// vector pairs).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            pred,
            whence,
        }
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        let seed = self.source.generate(rng);
        (self.f)(seed).generate(rng)
    }
}

/// Output of [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.source.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        rng.gen_range(self.start..self.end)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.start as f64..self.end as f64) as f32
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "empty integer strategy range");
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

/// String-pattern strategy for the subset of regexes the workspace uses.
///
/// Upstream proptest interprets a `&str` strategy as a full regex; here only
/// `X{lo,hi}` repetition of a single-char class is supported, where `X` is
/// `.` (printable ASCII plus occasional `\n`/`,` to exercise parsers) or a
/// literal character. Anything else is generated as the literal pattern.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        if let Some((class, lo, hi)) = parse_repeat(self) {
            let n = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
            (0..n)
                .map(|_| match class {
                    '.' => {
                        // Mostly printable ASCII; sprinkle structural chars so
                        // line/field-oriented parsers see real edge cases.
                        match rng.gen_range(0u32..20) {
                            0 => '\n',
                            1 => ',',
                            _ => char::from(rng.gen_range(0x20u8..0x7F)),
                        }
                    }
                    c => c,
                })
                .collect()
        } else {
            (*self).to_string()
        }
    }
}

/// Parse `X{lo,hi}` → (class char, lo, hi). Returns None for other shapes.
fn parse_repeat(pat: &str) -> Option<(char, usize, usize)> {
    let mut chars = pat.chars();
    let class = chars.next()?;
    let rest = chars.as_str();
    let inner = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = inner.split_once(',')?;
    Some((class, lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Element-count specification for [`vec`]: a fixed size or a half-open
/// range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with sizes drawn from a [`SizeRange`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = if self.size.hi - self.size.lo <= 1 {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::collection::vec(element, size)` — vectors of generated elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
