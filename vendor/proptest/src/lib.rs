//! Offline stand-in for `proptest`.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of proptest the workspace's property tests use: the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` / `prop_assume!`
//! macros, `Strategy` for numeric ranges and tuples, `prop::collection::vec`
//! with fixed or ranged sizes, and `prop_flat_map` / `prop_map`.
//!
//! Differences from upstream: no shrinking (a failing case panics with the
//! generated inputs printed, but is not minimized), and case generation is
//! seeded deterministically from the test name so CI runs are reproducible.

pub mod strategy;
pub mod test_runner;

/// `prop::collection` — collection strategies.
pub mod collection {
    pub use crate::strategy::{vec, SizeRange, VecStrategy};
}

/// Everything a test module needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced access used as `prop::collection::vec(...)`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} ({}) at {}:{}",
                stringify!($cond),
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    };
}

/// Fail the current case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                left,
                right,
                file!(),
                line!()
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}, {}) at {}:{}",
                stringify!($a),
                stringify!($b),
                left,
                right,
                format!($($fmt)*),
                file!(),
                line!()
            )));
        }
    }};
}

/// Fail the current case if both sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?}) at {}:{}",
                stringify!($a),
                stringify!($b),
                left,
                file!(),
                line!()
            )));
        }
    }};
}

/// Discard the current case (does not count toward the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Define property tests over strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strats = ($($strat,)+);
            $crate::test_runner::run(&__config, stringify!($name), |__rng| {
                let ($($pat,)+) =
                    $crate::strategy::Strategy::generate(&__strats, __rng);
                $body
                Ok(())
            });
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_in_bounds(x in 0.5f64..2.5, n in 3usize..9) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((3..9).contains(&n));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(-1.0f64..1.0, 2..20)) {
            prop_assert!(v.len() >= 2 && v.len() < 20);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn flat_map_pairs_equal_length(
            (a, b) in (1usize..10).prop_flat_map(|n| (
                prop::collection::vec(0.0f64..1.0, n),
                prop::collection::vec(0.0f64..1.0, n),
            ))
        ) {
            prop_assert_eq!(a.len(), b.len());
        }

        #[test]
        fn assume_rejects_cases(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    #[test]
    #[should_panic(expected = "assertion failed")]
    fn failing_property_panics() {
        proptest! {
            fn inner(x in 0usize..10) {
                prop_assert!(x > 100);
            }
        }
        inner();
    }
}
